package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"hotspot/internal/feature"
	"hotspot/internal/geom"
	"hotspot/internal/layout"
	"hotspot/internal/nn"
	"hotspot/internal/nn/fused"
	"hotspot/internal/obs"
	"hotspot/internal/parallel"
	"hotspot/internal/scan"
	"hotspot/internal/train"
)

// The -exp scan suite benchmarks the full-layout scan engine on a
// city-scale synthetic die against the naive deployment baseline — every
// window extracted as a standalone clip and scored — and benchmarks
// incremental re-scan after a localized edit against a cold scan of the
// edited die. Before any timing it gates on bit parity: the shared-cache
// scan must reproduce the naive path's probability on every window, and
// the incremental re-scan must reproduce a cold scan of the edited die,
// or the run fails. Results go to -scan-out as JSON (BENCH_scan.json is
// the checked-in record).

// scanArm is one timed configuration's row of the JSON report.
type scanArm struct {
	// NsTotal is the mean wall time of one full pass.
	NsTotal float64 `json:"ns_total"`
	// NsPerWindow divides by the windows the pass scored.
	NsPerWindow float64 `json:"ns_per_window"`
	// BPerWindow is heap bytes allocated per scored window.
	BPerWindow float64 `json:"b_per_window"`
	// Windows is the number of windows the pass scored.
	Windows int `json:"windows"`
	// BlockDCTs is the number of block transforms the pass computed.
	BlockDCTs int `json:"block_dcts"`
	// Reps is the repetition count timed.
	Reps int `json:"reps"`
}

// scanReport is the -scan-out JSON document.
type scanReport struct {
	GOOS    string `json:"goos"`
	GOARCH  string `json:"goarch"`
	NumCPU  int    `json:"num_cpu"`
	Kernel  string `json:"kernel"`
	Workers int    `json:"workers"`

	DieCells int     `json:"die_cells"`
	DieNM    int     `json:"die_nm"`
	DieRects int     `json:"die_rects"`
	Blocks   int     `json:"blocks_per_side"`
	Windows  int     `json:"windows"`
	DirtyNM  int     `json:"dirty_nm"`
	DirtyPct float64 `json:"dirty_pct"`

	Naive       scanArm `json:"naive"`
	Shared      scanArm `json:"shared"`
	Incremental scanArm `json:"incremental"`

	CacheHitRate             float64 `json:"cache_hit_rate"`
	SpeedupSharedVsNaive     float64 `json:"speedup_shared_vs_naive"`
	SpeedupIncrementalVsCold float64 `json:"speedup_incremental_vs_cold"`
}

// scanEdit builds the benchmark's localized edit: a dirtyNM-sided region
// at the die centre, cleared and redrawn with one wire.
func scanEdit(die geom.Clip, dirtyNM int) layout.Edit {
	cx, cy := (die.Frame.X0+die.Frame.X1)/2, (die.Frame.Y0+die.Frame.Y1)/2
	region := geom.R(cx-dirtyNM/2, cy-dirtyNM/2, cx+dirtyNM/2, cy+dirtyNM/2)
	wire := geom.R(region.X0+40, region.Y0+40, region.X0+104, region.Y1-40)
	return layout.Edit{Region: region, Rects: []geom.Rect{wire}}
}

// naiveScan runs the deployment baseline: every window cut out as its own
// clip, rasterized, transformed and scored, fanned over the same worker
// count as the engine. Returns the per-window probabilities.
func naiveScan(s *scan.Scanner, ev *train.Evaluator, pool *parallel.Pool, fcfg feature.TensorConfig) ([]float64, error) {
	if err := ev.Prepare([]int{fcfg.K, fcfg.Blocks, fcfg.Blocks}); err != nil {
		return nil, err
	}
	wnx, wny := s.Windows()
	die := s.Die()
	return parallel.Map(pool, wnx*wny, func(worker, i int) (float64, error) {
		rect := s.WindowRect(i%wnx, i/wnx)
		ft, err := feature.ExtractTensor(geom.NewClip(rect, die.Rects), rect, fcfg)
		if err != nil {
			return 0, err
		}
		return ev.PredictOn(worker, ft)
	})
}

// timeScanArm times reps runs of pass, reporting mean wall time and heap
// traffic per scored window (windows is per-pass).
func timeScanArm(reps, windows, blockDCTs int, pass func() error) (scanArm, error) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	watch := obs.NewStopwatch()
	for r := 0; r < reps; r++ {
		if err := pass(); err != nil {
			return scanArm{}, err
		}
	}
	elapsed := watch.Elapsed()
	runtime.ReadMemStats(&after)
	ops := float64(reps)
	arm := scanArm{
		NsTotal:     float64(elapsed.Nanoseconds()) / ops,
		NsPerWindow: float64(elapsed.Nanoseconds()) / (ops * float64(windows)),
		BPerWindow:  float64(after.TotalAlloc-before.TotalAlloc) / (ops * float64(windows)),
		Windows:     windows,
		BlockDCTs:   blockDCTs,
		Reps:        reps,
	}
	return arm, nil
}

// checkScanParity fails unless two probability grids match bit for bit.
func checkScanParity(what string, got, want []float64) error {
	if len(got) != len(want) {
		return fmt.Errorf("%s: %d windows vs %d", what, len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			return fmt.Errorf("%s: PARITY FAILURE window %d: %v != %v", what, i, got[i], want[i])
		}
	}
	return nil
}

// runScan executes the suite and writes the JSON report to outPath.
func runScan(outPath string, cells, reps int, dirtyNM int, seed int64, workers int) error {
	if reps <= 0 {
		reps = 1
	}
	die, err := layout.GenerateDie(layout.DieConfig{CellsX: cells, CellsY: cells, Seed: seed, Workers: workers})
	if err != nil {
		return err
	}
	net, err := nn.NewPaperNet(nn.DefaultPaperNetConfig())
	if err != nil {
		return err
	}
	cfg := scan.DefaultConfig()
	cfg.Workers = workers
	s, err := scan.New(cfg, net, die)
	if err != nil {
		return err
	}
	if dirtyNM <= 0 {
		dirtyNM = die.Frame.W() / 10 // 1% of the die area
	}
	edit := scanEdit(die, dirtyNM)

	// Parity gates before any timing. The naive baseline needs its own
	// evaluator: the scanner owns its replicas for the timed passes.
	ev, err := train.NewEvaluator(net, workers)
	if err != nil {
		return err
	}
	pool := parallel.New(workers)
	cold, err := s.Scan()
	if err != nil {
		return err
	}
	naiveProbs, err := naiveScan(s, ev, pool, cfg.Feature)
	if err != nil {
		return err
	}
	if err := checkScanParity("shared vs naive", cold.Probs, naiveProbs); err != nil {
		return err
	}
	inc, err := s.Rescan(edit)
	if err != nil {
		return err
	}
	edited, _, err := layout.ApplyEdit(die, edit)
	if err != nil {
		return err
	}
	s2, err := scan.New(cfg, net, edited)
	if err != nil {
		return err
	}
	coldEdited, err := s2.Scan()
	if err != nil {
		return err
	}
	if err := checkScanParity("incremental vs cold", inc.Probs, coldEdited.Probs); err != nil {
		return err
	}
	fmt.Printf("parity: ok (%d windows shared≡naive, %d windows incremental≡cold)\n", len(cold.Probs), len(inc.Probs))

	wnx, wny := s.Windows()
	nbx, nby := s.Blocks()
	rep := scanReport{
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, NumCPU: runtime.NumCPU(),
		Kernel: fused.Vectorized(), Workers: pool.Size(),
		DieCells: cells, DieNM: die.Frame.W(), DieRects: len(die.Rects),
		Blocks: nbx, Windows: wnx * wny,
		DirtyNM:      dirtyNM,
		DirtyPct:     100 * float64(dirtyNM) * float64(dirtyNM) / (float64(die.Frame.W()) * float64(die.Frame.H())),
		CacheHitRate: cold.Stats.CacheHitRate,
	}

	// Timed passes. The incremental arm repeats the same edit, which is
	// idempotent on the layout and re-scores the same window set every rep.
	total := obs.NewStopwatch()
	if rep.Naive, err = timeScanArm(reps, wnx*wny, wnx*wny*cfg.Feature.Blocks*cfg.Feature.Blocks, func() error {
		_, err := naiveScan(s, ev, pool, cfg.Feature)
		return err
	}); err != nil {
		return err
	}
	if rep.Shared, err = timeScanArm(reps, wnx*wny, nbx*nby, func() error {
		_, err := s.Scan()
		return err
	}); err != nil {
		return err
	}
	incReps := reps * 5 // the fast arm affords more repetitions
	if rep.Incremental, err = timeScanArm(incReps, inc.Stats.Windows, inc.Stats.BlockDCTs, func() error {
		_, err := s.Rescan(edit)
		return err
	}); err != nil {
		return err
	}
	if rep.Shared.NsTotal > 0 {
		rep.SpeedupSharedVsNaive = rep.Naive.NsTotal / rep.Shared.NsTotal
	}
	if rep.Incremental.NsTotal > 0 {
		rep.SpeedupIncrementalVsCold = rep.Shared.NsTotal / rep.Incremental.NsTotal
	}

	fmt.Printf("die %d nm (%d cells, %d rects), %d blocks/side, %d windows, %d workers, %s kernel (timed in %v)\n",
		rep.DieNM, cells, rep.DieRects, rep.Blocks, rep.Windows, rep.Workers, rep.Kernel, total.Elapsed().Round(time.Millisecond))
	fmt.Printf("naive       %12.0f ns/pass %8.0f ns/win %8.0f B/win  %7d block DCTs\n",
		rep.Naive.NsTotal, rep.Naive.NsPerWindow, rep.Naive.BPerWindow, rep.Naive.BlockDCTs)
	fmt.Printf("shared-DCT  %12.0f ns/pass %8.0f ns/win %8.0f B/win  %7d block DCTs  hit rate %.4f  %.2fx vs naive\n",
		rep.Shared.NsTotal, rep.Shared.NsPerWindow, rep.Shared.BPerWindow, rep.Shared.BlockDCTs, rep.CacheHitRate, rep.SpeedupSharedVsNaive)
	fmt.Printf("incremental %12.0f ns/pass %8.0f ns/win %8.0f B/win  %7d block DCTs  (%.2f%% dirty)  %.2fx vs cold\n",
		rep.Incremental.NsTotal, rep.Incremental.NsPerWindow, rep.Incremental.BPerWindow, rep.Incremental.BlockDCTs, rep.DirtyPct, rep.SpeedupIncrementalVsCold)

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	return os.WriteFile(outPath, buf, 0o644)
}
