// Command hsd-scan strides the trained detector across a full synthetic
// die with the streaming scan engine: every DCT block of the die is
// transformed exactly once into a shared block cache, every window is
// assembled from cached coefficient vectors and scored through the fused
// inference engine, and hot windows are merged into region proposals.
// With -edit it additionally demonstrates incremental re-scan: the edit
// region's blocks are invalidated and only the affected windows
// re-scored, bit-identically to a cold scan of the edited die.
//
// Examples:
//
//	hsd-scan -cells 4 -untrained -heat heat.pgm     # random-weight smoke
//	hsd-scan -cells 6 -model model.gob -shift 0.1 -json regions.json
//	hsd-scan -cells 6 -model model.gob -edit 3200,3200,4000,4000
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"hotspot/internal/geom"
	"hotspot/internal/layout"
	"hotspot/internal/nn"
	"hotspot/internal/obs"
	"hotspot/internal/obs/trace"
	"hotspot/internal/parallel"
	"hotspot/internal/raster"
	"hotspot/internal/scan"
)

// scanOutput is the -json document: the die, the pass statistics and the
// merged region proposals (for the cold scan and, with -edit, the rescan).
type scanOutput struct {
	DieNM      int           `json:"die_nm"`
	DieRects   int           `json:"die_rects"`
	WindowsX   int           `json:"windows_x"`
	WindowsY   int           `json:"windows_y"`
	HotWindows int           `json:"hot_windows"`
	Stats      scan.Stats    `json:"stats"`
	Regions    []scan.Region `json:"regions"`

	Rescan *scanOutput `json:"rescan,omitempty"`
}

func output(s *scan.Scanner, res *scan.Result) *scanOutput {
	return &scanOutput{
		DieNM:      s.Die().Frame.W(),
		DieRects:   len(s.Die().Rects),
		WindowsX:   res.WindowsX,
		WindowsY:   res.WindowsY,
		HotWindows: res.HotWindows(),
		Stats:      res.Stats,
		Regions:    res.Regions,
	}
}

// parseEdit parses -edit's "x0,y0,x1,y1" region.
func parseEdit(s string) (geom.Rect, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return geom.Rect{}, fmt.Errorf("edit %q: want x0,y0,x1,y1", s)
	}
	var v [4]int
	for i, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return geom.Rect{}, fmt.Errorf("edit %q: %w", s, err)
		}
		v[i] = n
	}
	return geom.R(v[0], v[1], v[2], v[3]).Canon(), nil
}

// writeHeat writes the probability grid as a PGM image, one pixel per
// window.
func writeHeat(path string, res *scan.Result) error {
	im := raster.NewImage(res.WindowsX, res.WindowsY)
	copy(im.Pix, res.Probs)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = im.WritePGM(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func summarize(what string, res *scan.Result) {
	fmt.Printf("%s: %d windows (%dx%d), %d hot, %d regions | %d block DCTs, %d gathers, cache hit rate %.4f\n",
		what, res.WindowsX*res.WindowsY, res.WindowsX, res.WindowsY,
		res.HotWindows(), len(res.Regions),
		res.Stats.BlockDCTs, res.Stats.BlockGathers, res.Stats.CacheHitRate)
	for i, r := range res.Regions {
		if i == 10 {
			fmt.Printf("  ... %d more regions\n", len(res.Regions)-10)
			break
		}
		fmt.Printf("  region %d: %v (%d windows, max prob %.4f)\n", i, r.Rect, r.Windows, r.MaxProb)
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("hsd-scan: ")
	var (
		cells      = flag.Int("cells", 4, "die side in clip-sized cells")
		cellNM     = flag.Int("cell-nm", 0, "cell side in nm (0 = the style default)")
		seed       = flag.Int64("seed", 1, "die generation seed")
		model      = flag.String("model", "", "model checkpoint written by hsd-train (required unless -untrained)")
		untrained  = flag.Bool("untrained", false, "scan with a random-weight network (smoke runs)")
		window     = flag.Int("window", 1200, "scan window side in nm (the detector's clip size)")
		shift      = flag.Float64("shift", 0, "decision-boundary shift λ (Equation (11))")
		workers    = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS); the heat map is identical for any value")
		heat       = flag.String("heat", "", "write the probability heat map to this PGM file")
		jsonOut    = flag.String("json", "", "write stats and region proposals to this JSON file")
		edit       = flag.String("edit", "", "after the cold scan, clear region x0,y0,x1,y1 and incrementally re-scan")
		metricsOut = flag.String("metrics-out", "", "dump the metrics registry as scrape text to this file at exit")
		traceOut   = flag.String("trace-out", "", "record per-pass trace trees and dump the flight recorder as JSONL to this file at exit")
	)
	flag.Parse()
	parallel.SetDefault(*workers)
	obs.SetBuildInfo(obs.Default(), obs.L("tool", "hsd-scan"))

	var net *nn.Network
	var err error
	switch {
	case *untrained:
		net, err = nn.NewPaperNet(nn.DefaultPaperNetConfig())
	case *model == "":
		log.Fatal("-model is required (or pass -untrained for a random-weight smoke scan)")
	default:
		var f *os.File
		if f, err = os.Open(*model); err == nil {
			net, err = nn.Load(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
	}
	if err != nil {
		log.Fatal(err)
	}

	die, err := layout.GenerateDie(layout.DieConfig{
		CellsX: *cells, CellsY: *cells, CellNM: *cellNM, Seed: *seed, Workers: *workers,
	})
	if err != nil {
		log.Fatal(err)
	}

	cfg := scan.DefaultConfig()
	cfg.WindowNM = *window
	cfg.Workers = *workers
	cfg.Shift = *shift
	var tracer *trace.Tracer
	if *traceOut != "" {
		tracer = trace.New(trace.Config{})
		cfg.Tracer = tracer
	}
	s, err := scan.New(cfg, net, die)
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.Scan()
	if err != nil {
		log.Fatal(err)
	}
	summarize("scan", res)
	out := output(s, res)

	if *edit != "" {
		region, err := parseEdit(*edit)
		if err != nil {
			log.Fatal(err)
		}
		inc, err := s.Rescan(layout.Edit{Region: region})
		if err != nil {
			log.Fatal(err)
		}
		summarize("rescan", inc)
		out.Rescan = output(s, inc)
		res = inc // the heat map reflects the edited die
	}

	if *heat != "" {
		if err := writeHeat(*heat, res); err != nil {
			log.Fatal(err)
		}
	}
	if *jsonOut != "" {
		buf, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonOut, append(buf, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			log.Fatal(err)
		}
		err = obs.Default().WriteText(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Fatal(err)
		}
	}
	if tracer != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		err = tracer.WriteJSONL(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Fatal(err)
		}
	}
}
