// Command hsd-train trains the paper's detector (feature tensor + CNN +
// biased learning) on a generated suite and saves the model.
//
// Example:
//
//	hsd-gen -bench ICCAD -scale 0.02 -out iccad.gob
//	hsd-train -data iccad.gob -out model.gob -iters 2400
//	hsd-train -data iccad.gob -out model.gob -telemetry train.jsonl -metrics-out metrics.txt
//	hsd-train -data iccad.gob -init model.gob -out tuned.gob -rounds 1
//
// -init warm-starts from a saved checkpoint (shape-validated against the
// configured feature geometry) instead of fresh weights, so one fine-tune
// entry point serves both users and the hsd-active loop.
//
// With -telemetry the run emits structured JSONL: one "manifest" event
// (config, seed, worker count), one "epoch" event per validation
// checkpoint (loss, validation accuracy/recall/false alarms, learning
// rate, step latency), and one "result" event (model checksum, output
// path). With -metrics-out the process metrics registry (train/step,
// train/epoch, feature and worker-pool stages) is dumped as scrape text
// at exit. Both are observation only: the trained model bits are
// identical with or without them.
package main

import (
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"log"
	"os"

	"hotspot/internal/core"
	"hotspot/internal/dataset"
	"hotspot/internal/obs"
	"hotspot/internal/obs/trace"
	"hotspot/internal/parallel"
	"hotspot/internal/train"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hsd-train: ")
	var (
		data       = flag.String("data", "", "suite file written by hsd-gen (required)")
		out        = flag.String("out", "model.gob", "output model file")
		initPath   = flag.String("init", "", "warm-start checkpoint: resume training from this saved model instead of fresh weights")
		iters      = flag.Int("iters", 0, "override initial-round MGD iterations")
		rounds     = flag.Int("rounds", 0, "override biased-learning rounds t")
		lr         = flag.Float64("lr", 0, "override initial learning rate λ")
		seed       = flag.Int64("seed", 0, "override training seed")
		workers    = flag.Int("workers", 0, "worker goroutines for extraction, gradients and validation (0 = GOMAXPROCS); the trained model is identical for any value")
		telemetry  = flag.String("telemetry", "", "write JSONL training telemetry (manifest, per-epoch records, result) to this file")
		metricsOut = flag.String("metrics-out", "", "dump the metrics registry as scrape text to this file at exit")
		traceOut   = flag.String("trace-out", "", "record per-epoch trace trees and dump the flight recorder as JSONL to this file at exit")
	)
	flag.Parse()
	parallel.SetDefault(*workers)
	obs.SetBuildInfo(obs.Default(), obs.L("tool", "hsd-train"))
	if *data == "" {
		log.Fatal("-data is required")
	}

	var (
		tlog  *obs.EventLog
		tfile *os.File
	)
	if *telemetry != "" {
		var err error
		tfile, err = os.Create(*telemetry)
		if err != nil {
			log.Fatal(err)
		}
		tlog = obs.NewEventLog(tfile)
	}

	f, err := os.Open(*data)
	if err != nil {
		log.Fatal(err)
	}
	ds, err := dataset.Load(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		log.Fatal(err)
	}
	hs, nhs := dataset.Stats(ds.Train)
	fmt.Printf("suite %s: train %d HS / %d NHS\n", ds.Name, hs, nhs)

	cfg := core.DefaultConfig()
	cfg.Workers = *workers
	if *iters > 0 {
		cfg.Biased.Initial.MaxIters = *iters
		cfg.Biased.Initial.ValEvery = *iters / 10
		cfg.Biased.Initial.DecayStep = *iters / 3
	}
	if *rounds > 0 {
		cfg.Biased.Rounds = *rounds
	}
	if *lr > 0 {
		cfg.Biased.Initial.LearningRate = *lr
	}
	if *seed != 0 {
		cfg.Seed = *seed
		cfg.Biased.Initial.Seed = *seed
		cfg.Biased.FineTune.Seed = *seed + 1
		cfg.Net.Seed = *seed + 2
	}
	tlog.Emit("manifest", map[string]any{
		"tool":          "hsd-train",
		"suite":         ds.Name,
		"train_hs":      hs,
		"train_nhs":     nhs,
		"seed":          cfg.Seed,
		"workers":       parallel.Workers(*workers),
		"rounds":        cfg.Biased.Rounds,
		"max_iters":     cfg.Biased.Initial.MaxIters,
		"batch_size":    cfg.Biased.Initial.BatchSize,
		"learning_rate": cfg.Biased.Initial.LearningRate,
		"init":          *initPath,
	})
	if tlog != nil {
		cfg.OnEpoch = func(round int, eps float64, e train.EpochEvent) {
			tlog.Emit("epoch", map[string]any{
				"round":            round,
				"eps":              eps,
				"iter":             e.Iter,
				"loss":             e.TrainLoss,
				"val_accuracy":     e.ValAccuracy,
				"val_recall":       e.ValRecall,
				"val_false_alarms": e.ValFA,
				"learning_rate":    e.LearningRate,
				"step_p50_seconds": e.StepP50,
				"step_p99_seconds": e.StepP99,
				"elapsed_seconds":  e.Elapsed.Seconds(),
			})
		}
	}
	var tracer *trace.Tracer
	if *traceOut != "" {
		tracer = trace.New(trace.Config{})
		cfg.Biased.Initial.Tracer = tracer
		cfg.Biased.FineTune.Tracer = tracer
	}
	var det *core.Detector
	if *initPath != "" {
		// Warm start: resume from a saved checkpoint via the shared
		// train.LoadWarmStart entry point (shape-validated against the
		// configured feature geometry) instead of fresh weights.
		cf, err := os.Open(*initPath)
		if err != nil {
			log.Fatal(err)
		}
		det, err = core.LoadDetector(cf, cfg)
		if cerr := cf.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("warm start from %s\n", *initPath)
	} else {
		var err error
		det, err = core.NewDetector(cfg)
		if err != nil {
			log.Fatal(err)
		}
	}

	report, err := det.Train(ds.Train, ds.Core())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on %d samples (%d validation) in %v\n",
		report.TrainSamples, report.ValSamples, report.Elapsed)
	for _, r := range report.Rounds {
		fmt.Printf("  ε=%.1f: val recall %.1f%%, val FA %d\n",
			r.Eps, 100*r.Val.Recall, r.Val.FalseAlarms)
	}

	mf, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	// A failed Close on a file being written is silent data loss: check
	// it instead of deferring it into the void. The checkpoint bytes are
	// teed through FNV-1a so the telemetry names exactly what was written.
	sum := fnv.New64a()
	if err := det.Save(io.MultiWriter(mf, sum)); err != nil {
		log.Fatal(err)
	}
	if err := mf.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
	tlog.Emit("result", map[string]any{
		"model":           *out,
		"model_fnv64a":    fmt.Sprintf("%016x", sum.Sum64()),
		"train_samples":   report.TrainSamples,
		"val_samples":     report.ValSamples,
		"elapsed_seconds": report.Elapsed.Seconds(),
	})
	if tfile != nil {
		if err := tlog.Err(); err != nil {
			log.Fatal(err)
		}
		if err := tfile.Close(); err != nil {
			log.Fatal(err)
		}
	}
	if *metricsOut != "" {
		if err := writeMetrics(*metricsOut); err != nil {
			log.Fatal(err)
		}
	}
	if tracer != nil {
		tf, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		err = tracer.WriteJSONL(tf)
		if cerr := tf.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Fatal(err)
		}
	}
}

// writeMetrics dumps the process metrics registry scrape text to path.
func writeMetrics(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = obs.Default().WriteText(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
