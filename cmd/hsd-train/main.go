// Command hsd-train trains the paper's detector (feature tensor + CNN +
// biased learning) on a generated suite and saves the model.
//
// Example:
//
//	hsd-gen -bench ICCAD -scale 0.02 -out iccad.gob
//	hsd-train -data iccad.gob -out model.gob -iters 2400
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"hotspot/internal/core"
	"hotspot/internal/dataset"
	"hotspot/internal/parallel"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hsd-train: ")
	var (
		data    = flag.String("data", "", "suite file written by hsd-gen (required)")
		out     = flag.String("out", "model.gob", "output model file")
		iters   = flag.Int("iters", 0, "override initial-round MGD iterations")
		rounds  = flag.Int("rounds", 0, "override biased-learning rounds t")
		lr      = flag.Float64("lr", 0, "override initial learning rate λ")
		seed    = flag.Int64("seed", 0, "override training seed")
		workers = flag.Int("workers", 0, "worker goroutines for extraction, gradients and validation (0 = GOMAXPROCS); the trained model is identical for any value")
	)
	flag.Parse()
	parallel.SetDefault(*workers)
	if *data == "" {
		log.Fatal("-data is required")
	}

	f, err := os.Open(*data)
	if err != nil {
		log.Fatal(err)
	}
	ds, err := dataset.Load(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		log.Fatal(err)
	}
	hs, nhs := dataset.Stats(ds.Train)
	fmt.Printf("suite %s: train %d HS / %d NHS\n", ds.Name, hs, nhs)

	cfg := core.DefaultConfig()
	cfg.Workers = *workers
	if *iters > 0 {
		cfg.Biased.Initial.MaxIters = *iters
		cfg.Biased.Initial.ValEvery = *iters / 10
		cfg.Biased.Initial.DecayStep = *iters / 3
	}
	if *rounds > 0 {
		cfg.Biased.Rounds = *rounds
	}
	if *lr > 0 {
		cfg.Biased.Initial.LearningRate = *lr
	}
	if *seed != 0 {
		cfg.Seed = *seed
		cfg.Biased.Initial.Seed = *seed
		cfg.Biased.FineTune.Seed = *seed + 1
		cfg.Net.Seed = *seed + 2
	}
	det, err := core.NewDetector(cfg)
	if err != nil {
		log.Fatal(err)
	}

	report, err := det.Train(ds.Train, ds.Core())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on %d samples (%d validation) in %v\n",
		report.TrainSamples, report.ValSamples, report.Elapsed)
	for _, r := range report.Rounds {
		fmt.Printf("  ε=%.1f: val recall %.1f%%, val FA %d\n",
			r.Eps, 100*r.Val.Recall, r.Val.FalseAlarms)
	}

	mf, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	// A failed Close on a file being written is silent data loss: check
	// it instead of deferring it into the void.
	if err := det.Save(mf); err != nil {
		log.Fatal(err)
	}
	if err := mf.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}
