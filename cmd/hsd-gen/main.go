// Command hsd-gen generates a labelled hotspot benchmark suite and writes
// it to disk, so the expensive lithography labelling runs once and training
// experiments load it instantly.
//
// Examples:
//
//	hsd-gen -bench ICCAD -scale 0.02 -out iccad.gob
//	hsd-gen -bench Industry3 -scale 0.01 -seed 7 -out ind3.gob
//	hsd-gen -bench Industry1 -rate-only      # print the raw hotspot rate
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"hotspot/internal/dataset"
	"hotspot/internal/layout"
	"hotspot/internal/litho"
	"hotspot/internal/obs"
	"hotspot/internal/parallel"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hsd-gen: ")
	var (
		bench    = flag.String("bench", "ICCAD", "benchmark style: ICCAD, Industry1, Industry2, Industry3")
		scale    = flag.Float64("scale", 0.01, "fraction of the paper's Table 2 sample counts")
		seed     = flag.Int64("seed", 1, "generation seed (same seed => same suite)")
		out      = flag.String("out", "", "output file (gob); required unless -rate-only")
		rateOnly = flag.Bool("rate-only", false, "only estimate the style's raw hotspot rate and exit")
		rateN    = flag.Int("rate-n", 300, "candidates for -rate-only estimation")
		workers  = flag.Int("workers", 0, "worker goroutines for generation and labelling (0 = GOMAXPROCS); output is identical for any value")
	)
	flag.Parse()
	parallel.SetDefault(*workers)

	style, err := layout.StyleByName(*bench)
	if err != nil {
		log.Fatal(err)
	}

	if *rateOnly {
		rate, err := layout.HotspotRate(style, *rateN, *seed, litho.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s raw hotspot rate: %.3f (over %d candidates)\n", style.Name, rate, *rateN)
		return
	}

	if *out == "" {
		log.Fatal("-out is required")
	}
	counts, err := layout.PaperCounts(*bench)
	if err != nil {
		log.Fatal(err)
	}
	scaled := counts.Scale(*scale)
	fmt.Printf("generating %s at scale %g: train %d HS / %d NHS, test %d HS / %d NHS\n",
		style.Name, *scale, scaled.TrainHS, scaled.TrainNHS, scaled.TestHS, scaled.TestNHS)

	watch := obs.NewStopwatch()
	suite, err := layout.BuildSuite(style, scaled, layout.BuildOptions{Seed: *seed, Workers: *workers})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d clips in %v\n", len(suite.Train)+len(suite.Test), watch.Elapsed())

	ds := dataset.FromSuite(suite, style)
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	// A failed Close on a file being written is silent data loss: check
	// it instead of deferring it into the void.
	if err := ds.Save(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}
