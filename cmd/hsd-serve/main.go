// Command hsd-serve runs the online inference service: a long-running
// HTTP server that answers hotspot queries with the trained model,
// coalescing concurrent requests into micro-batches on the shared worker
// pool (see internal/serve).
//
// Example:
//
//	hsd-gen -bench ICCAD -scale 0.02 -out iccad.gob
//	hsd-train -data iccad.gob -out model.gob
//	hsd-serve -model model.gob -addr 127.0.0.1:8080
//	curl -s -X POST http://127.0.0.1:8080/v1/predict \
//	    -d '{"frame":{"x0":0,"y0":0,"x1":1200,"y1":1200},"rects":[{"x0":100,"y0":0,"x1":160,"y1":1200}]}'
//
// Endpoints: POST /v1/predict, POST /v1/predict/batch, GET /healthz,
// GET /readyz, GET /metrics, POST /admin/reload.
//
// SIGINT/SIGTERM shut down gracefully: the listener stops, in-flight
// requests and queued micro-batches drain, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hotspot/internal/nn"
	"hotspot/internal/obs/trace"
	"hotspot/internal/parallel"
	"hotspot/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hsd-serve: ")
	var (
		model     = flag.String("model", "", "model checkpoint written by hsd-train (required unless -untrained)")
		untrained = flag.Bool("untrained", false, "serve a fresh random-weight network instead of a checkpoint (smoke tests and load drills only)")
		addr      = flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port; the chosen address is printed)")
		workers   = flag.Int("workers", 0, "worker goroutines for extraction and inference (0 = GOMAXPROCS); predictions are identical for any value")
		maxBatch  = flag.Int("max-batch", 32, "micro-batch flush size")
		maxWait   = flag.Duration("max-wait", 2*time.Millisecond, "micro-batch flush deadline")
		queue     = flag.Int("queue", 256, "pending-request queue bound (full queue → HTTP 429)")
		cacheSize = flag.Int("cache", 4096, "clip-dedup LRU entries (0 disables)")
		shift     = flag.Float64("shift", 0, "decision-boundary shift λ (Equation (11))")
		timeout   = flag.Duration("timeout", 5*time.Second, "per-request prediction timeout")
		coreSide  = flag.Int("core", 1200, "default clip-core side in nm (centered in each request's frame)")
		drain     = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
		pprofOn   = flag.Bool("pprof", false, "mount /debug/pprof and /debug/obs on the listen address (off by default; exposes process internals)")
		traceOn   = flag.Bool("trace", false, "record request traces in the in-memory flight recorder and mount GET /debug/trace (off by default; exposes request internals)")
	)
	flag.Parse()
	parallel.SetDefault(*workers)
	if *model == "" && !*untrained {
		log.Fatal("-model is required (or pass -untrained for a random-weight smoke server)")
	}

	cfg := serve.DefaultConfig()
	cfg.CoreSide = *coreSide
	cfg.MaxBatch = *maxBatch
	cfg.MaxWait = *maxWait
	cfg.QueueSize = *queue
	cfg.CacheSize = *cacheSize
	cfg.Workers = *workers
	cfg.Shift = *shift
	cfg.RequestTimeout = *timeout
	if *traceOn {
		cfg.Trace = &trace.Config{}
	}

	srv, err := serve.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if *untrained {
		net0, err := nn.NewPaperNet(nn.DefaultPaperNetConfig())
		if err != nil {
			log.Fatal(err)
		}
		if err := srv.LoadNetwork(net0, "untrained (random init)"); err != nil {
			log.Fatal(err)
		}
		log.Print("WARNING: serving an UNTRAINED random-weight network (-untrained)")
	} else {
		if err := srv.LoadCheckpoint(*model); err != nil {
			log.Fatal(err)
		}
	}
	info, _ := srv.Model()
	fmt.Printf("hsd-serve: model %s (%d params), batch %d/%v, queue %d, cache %d, workers %d\n",
		info.Origin, info.Params, cfg.MaxBatch, cfg.MaxWait, cfg.QueueSize, cfg.CacheSize, parallel.Workers(cfg.Workers))

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	// The resolved address line is load-bearing: with port 0 it is how
	// the smoke runner (scripts/smoke) finds the server.
	fmt.Printf("hsd-serve: listening on %s\n", ln.Addr())

	httpSrv := &http.Server{Handler: serve.DebugHandler(srv, *pprofOn)}
	sigCtx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	drained := make(chan struct{})
	go func() { //hsd:allow goroutinelint shutdown watcher; joined via the drained channel main blocks on after Serve returns
		<-sigCtx.Done()
		fmt.Println("hsd-serve: shutting down, draining in-flight requests")
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		srv.Close()
		close(drained)
	}()

	if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-drained
	fmt.Println("hsd-serve: drained, bye")
}
