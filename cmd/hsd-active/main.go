// Command hsd-active runs the budgeted batch active-learning loop: it
// generates a shared clip pool, then alternates scoring the unlabeled
// pool, selecting a batch by hybrid uncertainty + k-center diversity (or
// uniformly at random with -strategy random, the baseline), labeling the
// batch through the litho oracle while charging a simulated ODST-seconds
// budget, and fine-tuning the detector warm-started from the previous
// round's weights.
//
// Example:
//
//	hsd-active -pool 200 -eval 80 -rounds 4 -batch 16 -budget 600 -out active.gob
//	hsd-active -pool 200 -eval 80 -rounds 4 -batch 16 -strategy random -seed 1
//	hsd-active -init model.gob -pool 400 -rounds 2 -batch 32 -manifest active.jsonl
//
// For a fixed seed, pool and budget the selected clip sequences and the
// final weights are bit-identical under any -workers value. -manifest
// emits the run as JSONL (one "manifest" event, one "round" event per
// round, one "result" event); -metrics-out dumps the process metrics
// registry (budget meter, selection/scoring stage timings) at exit.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"hotspot/internal/active"
	"hotspot/internal/feature"
	"hotspot/internal/geom"
	"hotspot/internal/layout"
	"hotspot/internal/litho"
	"hotspot/internal/nn"
	"hotspot/internal/obs"
	"hotspot/internal/obs/trace"
	"hotspot/internal/parallel"
	"hotspot/internal/train"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hsd-active: ")
	var (
		styleName  = flag.String("style", "ICCAD", "layout style for pool generation (ICCAD, Industry1..3)")
		poolN      = flag.Int("pool", 200, "unlabeled pool size (clips)")
		evalN      = flag.Int("eval", 80, "held-out eval set size (labeled up front, free of budget)")
		rounds     = flag.Int("rounds", 4, "active-learning rounds")
		batch      = flag.Int("batch", 16, "clips selected per round")
		candidates = flag.Int("candidates", 0, "uncertainty shortlist fed to k-center (0 = 4×batch)")
		strategy   = flag.String("strategy", active.StrategyHybrid, "selection strategy: hybrid or random")
		budget     = flag.Float64("budget", 0, "total labeling budget in simulated ODST seconds (0 = unlimited)")
		labelCost  = flag.Float64("label-cost", 0, "simulated seconds charged per labeled clip (0 = litho default)")
		seed       = flag.Int64("seed", 1, "seed for pool generation and selection tie-breaking")
		workers    = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS); results are identical for any value")
		iters      = flag.Int("iters", 0, "override per-round fine-tune MGD iterations")
		blocks     = flag.Int("blocks", 0, "override feature tensor block grid (0 = paper default)")
		kcoef      = flag.Int("k", 0, "override DCT coefficients kept per block (0 = paper default)")
		initPath   = flag.String("init", "", "warm-start checkpoint: start the loop from this saved model")
		out        = flag.String("out", "", "save the final model to this file")
		manifest   = flag.String("manifest", "", "write JSONL run telemetry (manifest, per-round records, result) to this file")
		metricsOut = flag.String("metrics-out", "", "dump the metrics registry as scrape text to this file at exit")
		traceOut   = flag.String("trace-out", "", "record per-round trace trees and dump the flight recorder as JSONL to this file at exit")
	)
	flag.Parse()
	parallel.SetDefault(*workers)
	obs.SetBuildInfo(obs.Default(), obs.L("tool", "hsd-active"))

	style, err := layout.StyleByName(*styleName)
	if err != nil {
		log.Fatal(err)
	}
	fcfg := feature.DefaultTensorConfig()
	if *blocks > 0 {
		fcfg.Blocks = *blocks
	}
	if *kcoef > 0 {
		fcfg.K = *kcoef
	}

	var (
		mlog  *obs.EventLog
		mfile *os.File
	)
	if *manifest != "" {
		mfile, err = os.Create(*manifest)
		if err != nil {
			log.Fatal(err)
		}
		mlog = obs.NewEventLog(mfile)
	}

	// Generate the shared clip pool and the held-out eval clips from
	// disjoint per-index RNG streams (eval indices start at poolN), then
	// label the eval set up front through the litho oracle — eval labels
	// are free: the budget meters pool labeling only.
	labeler, err := layout.NewLabeler(style, litho.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	clips := genClips(style, *seed, 0, *poolN+*evalN)
	core := style.CoreRect()
	pool, err := active.NewPool(clips[:*poolN], core, fcfg, *workers)
	if err != nil {
		log.Fatal(err)
	}
	evalSet, err := labelSet(labeler, clips[*poolN:], core, fcfg, *workers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pool %d clips, eval %d clips (style %s, %d×%d×%d features)\n",
		*poolN, *evalN, style.Name, fcfg.K, fcfg.Blocks, fcfg.Blocks)

	net, err := buildNet(*initPath, fcfg)
	if err != nil {
		log.Fatal(err)
	}

	tune := active.DefaultTune()
	if *iters > 0 {
		tune.Initial.MaxIters = *iters
		if *iters >= 2 {
			tune.Initial.DecayStep = *iters / 2
		}
	}
	var tracer *trace.Tracer
	if *traceOut != "" {
		tracer = trace.New(trace.Config{})
	}
	cfg := active.Config{
		Rounds:        *rounds,
		Batch:         *batch,
		Candidates:    *candidates,
		Strategy:      *strategy,
		LabelSeconds:  *labelCost,
		BudgetSeconds: *budget,
		Seed:          *seed,
		Workers:       *workers,
		Tune:          tune,
		Log:           mlog,
		Tracer:        tracer,
	}
	loop, err := active.NewLoop(cfg, net, pool, func(_ int, c geom.Clip) (bool, error) {
		rep, err := labeler.Label(c)
		if err != nil {
			return false, err
		}
		return rep.Hotspot, nil
	}, evalSet)
	if err != nil {
		log.Fatal(err)
	}
	reports, err := loop.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("round  scored  labeled  hotspots  budget-spent  accuracy  recall  false-alarms")
	for _, r := range reports {
		trunc := ""
		if r.Truncated {
			trunc = "  (budget exhausted)"
		}
		fmt.Printf("%5d  %6d  %7d  %8d  %12.1f  %7.1f%%  %5.1f%%  %12d%s\n",
			r.Round, r.Scored, r.Labeled, r.Hotspots, r.BudgetSpent,
			100*r.Eval.Accuracy, 100*r.Eval.Recall, r.Eval.FalseAlarms, trunc)
	}
	fmt.Printf("labeled %d clips for %.1f simulated ODST seconds; weight checksum %016x\n",
		len(loop.Labeled()), loop.Budget().Spent(), active.WeightChecksum(net))

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		err = net.Save(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if mfile != nil {
		if err := mlog.Err(); err != nil {
			log.Fatal(err)
		}
		if err := mfile.Close(); err != nil {
			log.Fatal(err)
		}
	}
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			log.Fatal(err)
		}
		err = obs.Default().WriteText(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Fatal(err)
		}
	}
	if tracer != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		err = tracer.WriteJSONL(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Fatal(err)
		}
	}
}

// genClips generates clips for indices base..base+n-1, each from its own
// index-keyed RNG stream (the suite-generation construction), so pools and
// eval sets are deterministic and disjoint for disjoint index ranges.
func genClips(style layout.Style, seed int64, base, n int) []geom.Clip {
	out := make([]geom.Clip, n)
	for i := range out {
		rng := rand.New(rand.NewSource(seed + int64(base+i)*0x9e3779b9))
		out[i] = layout.Generate(style, rng)
	}
	return out
}

// labelSet labels clips through the litho oracle and extracts their
// feature tensors, fanned across workers in index order.
func labelSet(labeler *layout.Labeler, clips []geom.Clip, core geom.Rect, fcfg feature.TensorConfig, workers int) ([]train.Sample, error) {
	ts, err := feature.ExtractTensors(clips, core, fcfg, workers)
	if err != nil {
		return nil, err
	}
	hots, err := parallel.Map(parallel.New(workers), len(clips), func(_, i int) (bool, error) {
		rep, err := labeler.Label(clips[i])
		if err != nil {
			return false, err
		}
		return rep.Hotspot, nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]train.Sample, len(clips))
	for i := range out {
		out[i] = train.Sample{X: ts[i], Hotspot: hots[i]}
	}
	return out, nil
}

// buildNet returns the starting network: the paper architecture sized to
// the feature geometry, or a shape-validated warm-start checkpoint.
func buildNet(initPath string, fcfg feature.TensorConfig) (*nn.Network, error) {
	if initPath != "" {
		f, err := os.Open(initPath)
		if err != nil {
			return nil, err
		}
		net, err := train.LoadWarmStart(f, []int{fcfg.K, fcfg.Blocks, fcfg.Blocks})
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, err
		}
		fmt.Printf("warm start from %s\n", initPath)
		return net, nil
	}
	ncfg := nn.DefaultPaperNetConfig()
	ncfg.InChannels = fcfg.K
	ncfg.SpatialSize = fcfg.Blocks
	return nn.NewPaperNet(ncfg)
}
