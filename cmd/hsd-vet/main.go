// Command hsd-vet runs the project's static-analysis suite: six analyzers
// that machine-check the determinism, numerics, concurrency, and
// observability contracts the reproduction depends on (see DESIGN.md
// "Determinism & numerics rules"). It is part of the standing check gate alongside `go vet` and
// `go test -race` (scripts/check.sh).
//
// Usage:
//
//	hsd-vet [packages]              # default ./...
//	hsd-vet -only seedlint,errlint ./internal/...
//	hsd-vet -list                   # describe the analyzers
//
// Exit status is 0 when no findings survive, 1 when findings are printed,
// 2 on usage or load errors. Individual findings can be waived with a
// `//hsd:allow <analyzer> <reason>` comment on or above the offending
// line.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"hotspot/internal/lint"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hsd-vet: ")
	var (
		only = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
		list = flag.Bool("list", false, "list analyzers and exit")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := lint.Select(*only)
	if err != nil {
		log.Println(err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		log.Println(err)
		os.Exit(2)
	}
	diags, err := lint.Run(pkgs, analyzers)
	if err != nil {
		log.Println(err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		log.Printf("%d finding(s) in %d package(s)", len(diags), len(pkgs))
		os.Exit(1)
	}
}
