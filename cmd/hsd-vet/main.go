// Command hsd-vet runs the project's static-analysis suite: eight
// analyzers that machine-check the determinism, numerics, concurrency,
// observability, and hot-path contracts the reproduction depends on (see
// DESIGN.md "Determinism & numerics rules"). Six are per-package AST
// passes; hotlint and alloclint are interprocedural, working on a static
// call graph of the whole module. It is part of the standing check gate
// alongside `go vet` and `go test -race` (scripts/check.sh).
//
// Usage:
//
//	hsd-vet [packages]              # default ./...
//	hsd-vet -only seedlint,errlint ./internal/...
//	hsd-vet -only hotlint ./...     # just the hot-path contract
//	hsd-vet -list                   # describe the analyzers
//	hsd-vet -callgraph ./...        # dump the static call graph and exit
//	hsd-vet -waivers ./...          # audit //hsd:allow directives; fail on stale ones
//
// Exit status is 0 when no findings survive, 1 when findings are printed
// (or, with -waivers, stale waivers found), 2 on usage or load errors.
// Individual findings can be waived with a `//hsd:allow <analyzer>
// <reason>` comment on or above the offending line; hotlint and alloclint
// waivers require the reason. A `//hsd:cold <reason>` directive on a call
// declares that edge off the hot path, and hotlint's walk skips it. A package that fails to load is reported
// and skipped — the rest are still analyzed, and the exit status is
// nonzero.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"

	"hotspot/internal/lint"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hsd-vet: ")
	var (
		only      = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
		list      = flag.Bool("list", false, "list analyzers and exit")
		callgraph = flag.Bool("callgraph", false, "dump the static call graph (roots, edges, hot reachability) and exit")
		waivers   = flag.Bool("waivers", false, "report every //hsd:allow directive and fail on stale ones")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := lint.Select(*only)
	if err != nil {
		log.Println(err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	loadFailed := false
	if err != nil {
		var lerr *lint.LoadError
		if errors.As(err, &lerr) && len(pkgs) > 0 {
			log.Println(err)
			log.Printf("continuing with the %d package(s) that loaded", len(pkgs))
			loadFailed = true
		} else {
			log.Println(err)
			os.Exit(2)
		}
	}

	if *callgraph {
		w := bufio.NewWriter(os.Stdout)
		if err := lint.BuildProgram(pkgs).WriteGraph(w); err == nil {
			err = w.Flush()
		}
		if err != nil {
			log.Println(err)
			os.Exit(2)
		}
		if loadFailed {
			os.Exit(1)
		}
		return
	}

	diags, waiverList, err := lint.RunAll(pkgs, analyzers)
	if err != nil {
		log.Println(err)
		os.Exit(2)
	}

	if *waivers {
		// Staleness is only meaningful for analyzers that actually ran:
		// with -only, waivers for unselected analyzers are not judged —
		// but a waiver naming an analyzer that does not exist at all is
		// always stale (a typo suppresses nothing, silently).
		selected := make(map[string]bool)
		for _, a := range analyzers {
			selected[a.Name] = true
		}
		known := map[string]bool{lint.ColdDirective: true}
		for _, a := range lint.All() {
			known[a.Name] = true
		}
		stale := 0
		for _, w := range waiverList {
			status := "used"
			switch {
			case !known[w.Analyzer]:
				status = "STALE (unknown analyzer)"
				stale++
			case w.Analyzer == lint.ColdDirective && !selected["hotlint"],
				w.Analyzer != lint.ColdDirective && !selected[w.Analyzer]:
				// Only judged when the governing analyzer actually ran.
				continue
			case !w.Used:
				status = "STALE"
				stale++
			}
			reason := w.Reason
			if reason == "" {
				reason = "(no justification)"
			}
			directive := "hsd:allow " + w.Analyzer
			if w.Analyzer == lint.ColdDirective {
				directive = "hsd:cold"
			}
			fmt.Printf("%s:%d: %s [%s] %s\n", w.Pos.Filename, w.Pos.Line, directive, status, reason)
		}
		if stale > 0 {
			log.Printf("%d stale waiver(s): they no longer suppress any finding — delete them", stale)
			os.Exit(1)
		}
		if loadFailed {
			os.Exit(1)
		}
		return
	}

	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		log.Printf("%d finding(s) in %d package(s)", len(diags), len(pkgs))
		os.Exit(1)
	}
	if loadFailed {
		os.Exit(1)
	}
}
